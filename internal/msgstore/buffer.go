package msgstore

import (
	"sync"

	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
)

// Entry is one vertex message in a remote batch. Slot optionally carries
// the position of Src in Dst's in-neighbor list, biased by one (0 means
// unknown): senders that walk their out-edge list know it for free from
// the engine's precomputed edge→slot table, and carrying it saves the
// store a binary search per Overwrite-mode delivery. A zero Slot is always
// safe — the store falls back to looking the position up.
type Entry[M any] struct {
	Dst, Src graph.VertexID
	Msg      M
	Ver      uint32
	Slot     uint32
}

// Buffer is the message buffer cache of §6.1: outgoing remote messages are
// batched per destination worker to use the (simulated) network
// efficiently. Batches flush automatically when full and manually before a
// worker hands over a token or fork (the C1 write-all flush).
type Buffer[M any] struct {
	perDest  []*destBuf[M]
	cap      int
	msgBytes int
	hdr      int // batch header bytes
	entryHdr int // per-entry header bytes
	combine  func(a, b M) M
	send     func(dest int, batch []Entry[M], bytes int)
	reg      *metrics.Registry
	alloc    func() []Entry[M]
}

type destBuf[M any] struct {
	mu      sync.Mutex
	entries []Entry[M]
	// slot maps a destination vertex to its combined entry's index when
	// sender-side combining is on.
	slot map[graph.VertexID]int
}

// NewBuffer creates a buffer cache for nWorkers destinations. cap is the
// flush threshold in entries; send is invoked with the drained batch and
// its simulated wire size.
func NewBuffer[M any](nWorkers, cap, msgBytes, batchHeader, entryHeader int, send func(dest int, batch []Entry[M], bytes int)) *Buffer[M] {
	if cap < 1 {
		cap = 1
	}
	b := &Buffer[M]{cap: cap, msgBytes: msgBytes, hdr: batchHeader, entryHdr: entryHeader, send: send}
	b.perDest = make([]*destBuf[M], nWorkers)
	for i := range b.perDest {
		b.perDest[i] = &destBuf[M]{}
	}
	return b
}

// SetCombiner enables sender-side combining (Giraph's combiner support):
// messages buffered for the same destination vertex are folded with fn
// before they ever reach the network, shrinking batches for algorithms
// like SSSP and WCC. Call before any Add.
func (b *Buffer[M]) SetCombiner(fn func(a, b M) M) { b.combine = fn }

// SetAlloc installs a batch allocator, letting the engine recycle spent
// batch slices through a pool instead of allocating a fresh full-capacity
// slice per emitted batch. fn may return nil (or a slice of any capacity);
// the buffer falls back to make. Call before any Add.
func (b *Buffer[M]) SetAlloc(fn func() []Entry[M]) { b.alloc = fn }

// newBatch returns an empty slice to start the next batch in, preferring
// the engine-provided recycler.
func (b *Buffer[M]) newBatch() []Entry[M] {
	if b.alloc != nil {
		if s := b.alloc(); s != nil {
			return s[:0]
		}
	}
	return make([]Entry[M], 0, b.cap)
}

// SetMetrics attaches a metrics registry. Counting lives inside the buffer
// — not at its call sites — because every remote-send path (capacity
// flush, end-of-superstep FlushAll, the Chandy–Misra pre-handoff FlushTo)
// funnels through emit, so no path can silently skip the counters. Call
// before any Add.
func (b *Buffer[M]) SetMetrics(reg *metrics.Registry) { b.reg = reg }

// emit counts and sends one drained batch.
func (b *Buffer[M]) emit(dest int, batch []Entry[M]) {
	bytes := b.batchBytes(len(batch))
	if b.reg != nil {
		b.reg.Add(metrics.RemoteBatches, 1)
		b.reg.Add(metrics.RemoteBatchBytes, int64(bytes))
		b.reg.Add(metrics.RemoteEntriesFlushed, int64(len(batch)))
		b.reg.Observe(metrics.HistBatchEntries, int64(len(batch)))
	}
	b.send(dest, batch, bytes)
}

// Add buffers a message bound for a vertex on worker dest, flushing that
// destination if the buffer is full.
func (b *Buffer[M]) Add(dest int, e Entry[M]) {
	if b.reg != nil {
		// Counts messages as buffered, before sender-side combining folds
		// them, so combining's effectiveness is remote_entries vs.
		// remote_entries_flushed.
		b.reg.Add(metrics.RemoteEntries, 1)
	}
	d := b.perDest[dest]
	d.mu.Lock()
	if b.combine != nil {
		if d.slot == nil {
			d.slot = make(map[graph.VertexID]int)
		}
		if i, ok := d.slot[e.Dst]; ok {
			d.entries[i].Msg = b.combine(d.entries[i].Msg, e.Msg)
			d.mu.Unlock()
			return
		}
		d.slot[e.Dst] = len(d.entries)
	}
	d.entries = append(d.entries, e)
	if len(d.entries) >= b.cap {
		batch := d.entries
		// Ownership of the full batch transfers to the receiver. This
		// destination just proved it fills whole batches, so start the next
		// one at full capacity — one allocation (or a recycled slice) instead
		// of doubling up. (FlushTo deliberately does NOT preallocate:
		// end-of-superstep flushes are usually far below cap, and zeroing a
		// full-cap slice per destination per superstep costs more than it
		// saves.)
		d.entries = b.newBatch()
		d.slot = nil
		d.mu.Unlock()
		b.emit(dest, batch)
		return
	}
	d.mu.Unlock()
}

// AddBatch buffers a run of messages for one destination worker with a
// single lock acquisition and a single counter update, emitting full
// batches as the buffer fills. Semantically identical to calling Add per
// entry; the caller keeps ownership of es (entries are copied in). The
// engine's compute threads use it to fold a partition's worth of staged
// remote messages in at once instead of taking the destination mutex per
// message.
func (b *Buffer[M]) AddBatch(dest int, es []Entry[M]) {
	if len(es) == 0 {
		return
	}
	if b.reg != nil {
		// As in Add: counted before sender-side combining folds entries.
		b.reg.Add(metrics.RemoteEntries, int64(len(es)))
	}
	d := b.perDest[dest]
	var full [][]Entry[M]
	d.mu.Lock()
	// Reserve up front: after a flush the buffer restarts from nil, and
	// letting append double element-by-element costs a growslice chain per
	// destination per superstep. Restart from a recycled batch when one is
	// available, then grow geometrically (so repeated AddBatch calls stay
	// amortized-linear) to at least the whole run, clamped to cap —
	// len(d.entries) never reaches cap between emits.
	if d.entries == nil && b.alloc != nil {
		if s := b.alloc(); s != nil {
			d.entries = s[:0]
		}
	}
	if need := len(d.entries) + len(es); cap(d.entries) < need && cap(d.entries) < b.cap {
		newCap := 2 * cap(d.entries)
		if newCap < need {
			newCap = need
		}
		if newCap > b.cap {
			newCap = b.cap
		}
		ne := make([]Entry[M], len(d.entries), newCap)
		copy(ne, d.entries)
		d.entries = ne
	}
	for _, e := range es {
		if b.combine != nil {
			if d.slot == nil {
				d.slot = make(map[graph.VertexID]int)
			}
			if i, ok := d.slot[e.Dst]; ok {
				d.entries[i].Msg = b.combine(d.entries[i].Msg, e.Msg)
				continue
			}
			d.slot[e.Dst] = len(d.entries)
		}
		d.entries = append(d.entries, e)
		if len(d.entries) >= b.cap {
			full = append(full, d.entries)
			d.entries = b.newBatch()
			d.slot = nil
		}
	}
	d.mu.Unlock()
	for _, batch := range full {
		b.emit(dest, batch)
	}
}

// FlushTo drains the buffer for one destination, returning the number of
// entries sent.
func (b *Buffer[M]) FlushTo(dest int) int {
	d := b.perDest[dest]
	d.mu.Lock()
	batch := d.entries
	if len(batch) == 0 {
		d.mu.Unlock()
		return 0
	}
	d.entries = nil
	d.slot = nil
	d.mu.Unlock()
	b.emit(dest, batch)
	return len(batch)
}

// FlushAll drains every destination buffer.
func (b *Buffer[M]) FlushAll() {
	for dest := range b.perDest {
		b.FlushTo(dest)
	}
}

// Clear discards every buffered entry without sending it. The engine
// calls it during a rollback: messages buffered when the cluster failed
// belong to the discarded superstep and must not leak into the replay.
func (b *Buffer[M]) Clear() {
	for _, d := range b.perDest {
		d.mu.Lock()
		d.entries = nil
		d.slot = nil
		d.mu.Unlock()
	}
}

// Pending returns the number of buffered entries for dest.
func (b *Buffer[M]) Pending(dest int) int {
	d := b.perDest[dest]
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

func (b *Buffer[M]) batchBytes(n int) int {
	return b.hdr + n*(b.entryHdr+b.msgBytes)
}
