package msgstore

// Duplicate-delivery semantics: the fault injector can deliver a data
// message twice, and the torture harness's conservation oracle relies on
// each semantics class reacting predictably. These tests pin that down:
// min-combining and per-source overwrite absorb duplicates, sum-combining
// visibly does not (which is why duplicate injection pairs with
// idempotent workloads), and queues append every copy.

import (
	"testing"

	"serialgraph/internal/model"
)

func TestCombineMinAbsorbsDuplicates(t *testing.T) {
	g := lineGraph()
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	s := New[int](g, all(4), model.Combine, min)
	s.Put(2, 0, 7, 0)
	s.Put(2, 0, 7, 0) // duplicate delivery
	s.Put(2, 1, 9, 0)
	s.Put(2, 1, 9, 0)
	var r Reader[int]
	if !s.Read(2, &r) || len(r.Msgs) != 1 || r.Msgs[0] != 7 {
		t.Fatalf("min-combined read = %v, want [7]", r.Msgs)
	}
}

func TestCombineSumIsNotIdempotent(t *testing.T) {
	// Documenting the hazard, not a bug: a sum combiner counts duplicated
	// deliveries twice. Fault plans with DuplicateRate > 0 must therefore
	// only be asserted exact against idempotent (min/max-style) combiners.
	g := lineGraph()
	sum := func(a, b int) int { return a + b }
	s := New[int](g, all(4), model.Combine, sum)
	s.Put(2, 0, 5, 0)
	s.Put(2, 0, 5, 0) // duplicate delivery inflates the sum
	var r Reader[int]
	if !s.Read(2, &r) || len(r.Msgs) != 1 {
		t.Fatalf("combined read = %v", r.Msgs)
	}
	if r.Msgs[0] != 10 {
		t.Fatalf("sum after duplicate = %d, want 10 (duplicates are visible to sum combiners)", r.Msgs[0])
	}
}

func TestOverwriteDuplicateSameVersionHarmless(t *testing.T) {
	// A duplicated overwrite delivery re-writes the same (src, version)
	// slot: same payload, same version, so replica freshness (C1) and the
	// read sum are unaffected.
	g := lineGraph()
	s := New[int](g, all(4), model.Overwrite, nil)
	s.Put(2, 0, 42, 3)
	s.Put(2, 0, 42, 3) // duplicate delivery
	s.Put(2, 1, 17, 1)
	var r Reader[int]
	if !s.Read(2, &r) || len(r.Msgs) != 2 {
		t.Fatalf("overwrite read = %v, want 2 slots", r.Msgs)
	}
	for i, src := range r.Srcs {
		switch src {
		case 0:
			if r.Msgs[i] != 42 || r.Vers[i] != 3 {
				t.Errorf("slot from v0 = (%d, ver %d), want (42, ver 3)", r.Msgs[i], r.Vers[i])
			}
		case 1:
			if r.Msgs[i] != 17 || r.Vers[i] != 1 {
				t.Errorf("slot from v1 = (%d, ver %d), want (17, ver 1)", r.Msgs[i], r.Vers[i])
			}
		default:
			t.Errorf("unexpected source v%d", src)
		}
	}
}

func TestOverwriteStaleDuplicateAfterNewerWrite(t *testing.T) {
	// A duplicate that arrives after the source has already written a newer
	// version must not resurrect the old value: the slot keeps whatever was
	// written last, and the version travels with the payload that wrote it.
	g := lineGraph()
	s := New[int](g, all(4), model.Overwrite, nil)
	s.Put(2, 0, 10, 1)
	s.Put(2, 0, 20, 2) // newer write from the same source
	s.Put(2, 0, 10, 1) // straggling duplicate of the old delivery
	var r Reader[int]
	if !s.Read(2, &r) || len(r.Msgs) != 1 {
		t.Fatalf("overwrite read = %v, want 1 slot", r.Msgs)
	}
	// The store is last-writer-wins per slot; the recorded version lets the
	// C1 check catch exactly this reordering if it matters to a run.
	if r.Msgs[0] != 10 || r.Vers[0] != 1 {
		t.Fatalf("slot = (%d, ver %d); last delivery wins and carries its own version, want (10, ver 1)", r.Msgs[0], r.Vers[0])
	}
}

func TestQueueKeepsEveryDuplicate(t *testing.T) {
	g := lineGraph()
	s := New[int](g, all(4), model.Queue, nil)
	s.Put(2, 0, 5, 0)
	s.Put(2, 0, 5, 0)
	s.Put(2, 0, 5, 0)
	var r Reader[int]
	if !s.Read(2, &r) || len(r.Msgs) != 3 {
		t.Fatalf("queue read = %v, want 3 copies", r.Msgs)
	}
}
