package msgstore

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"unsafe"

	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
)

// Spill is the overflow tier of the bounded-memory message plane
// (DESIGN.md §12): a size-capped staging buffer for inbound BSP write-store
// batches. While buffered bytes stay under the budget, entries accumulate
// in memory exactly as they arrive. When an Add would exceed the budget,
// the current buffer is appended — still in arrival order — to a single
// spill file as one run; at the superstep barrier Drain replays the file
// front to back and then the residual memory buffer, delivering everything
// to the write store in bounded-size chunks.
//
// Correctness argument: runs are cut in arrival order and replayed in the
// order they were written, with the residual buffer (the newest arrivals)
// last, so the delivery stream reproduces the exact global arrival order —
// not merely per-destination order. The store therefore ends in the
// identical state direct PutBatch delivery would have produced, bitwise.
// No sorting or merging is involved; the spill file is a plain FIFO
// extension of the memory buffer.
//
// When Add is given a target store, a single replayer goroutine streams
// completed runs into it while the superstep is still computing, so the
// replay cost overlaps compute the same way direct delivery would, instead
// of landing on the barrier's critical path. The replayer is strictly
// sequential and nothing else writes the store while the sink is armed, so
// the ordering argument is unchanged. Rollback stays safe because both
// engine Discard sites clear the target stores wholesale right after.
//
// Spill is only used under BSP: deferring delivery to the barrier is
// exactly what BSP does anyway (the write store is not read until the
// swap). Async modes need same-superstep visibility and rely on the credit
// window alone to bound buffering.
type Spill[M any] struct {
	mu     sync.Mutex
	budget int64 // byte cap on the in-memory buffer; <=0 means unbounded
	// per-entry and per-batch byte accounting, matching Buffer.batchBytes
	// so budget and credit windows speak the same currency.
	msgBytes, hdr, entryHdr int

	// Staging. With the fixed-width codec entries stage pre-encoded in
	// ebuf (Add encodes straight from the caller's batch, so a flush is a
	// single write and nothing is re-walked); the gob fallback stages raw
	// entries in buf and encodes at flush. bufBytes is the accounted byte
	// count of whichever buffer is live — the currency the budget, credit
	// windows, and HistBufferedBytes share.
	buf      []Entry[M]
	ebuf     []byte
	bufBytes int64

	dir string
	// One append-only spill file per superstep cycle. cw counts bytes that
	// reached the OS; safeLen is its value after the last fully-flushed
	// run, so a failed append never exposes a partial run to Drain (the
	// entries of a failed flush are still in buf — nothing is lost).
	f       *os.File
	cw      *countingWriter
	w       *bufio.Writer
	genc    *gob.Encoder // gob fallback; one stream per cycle
	safeLen int64
	runs    int
	spilled int64

	// Eager-replay state. target is the store runs stream into during the
	// cycle (nil: replay happens in Drain); cond coordinates the flusher,
	// the replayer goroutine, and Drain/Discard, all under mu.
	cond      *sync.Cond
	target    *Store[M]
	replayer  bool  // replayer goroutine is live
	closing   bool  // Drain/Discard in progress; replayer exits once caught up
	readPos   int64 // file bytes already replayed this cycle
	replayErr error // first read-side failure (data loss); surfaced by Drain

	// spillErr records the first disk failure. Spilling degrades to
	// keeping entries in memory (correct, just unbounded); Drain still
	// delivers everything it can and returns an error only when data was
	// actually lost (a read-side failure).
	spillErr error

	// binary selects the fixed-width codec for numeric message types
	// (decided once from M at construction); other types fall back to gob.
	binary bool

	reg *metrics.Registry
}

// spillChunk is the entry count per encoded chunk inside the spill file.
// Chunked encoding lets Drain stream the file with O(chunk) resident
// entries instead of decoding whole runs.
const spillChunk = 1024

// spillBufSize is the bufio size on both sides of the spill file.
const spillBufSize = 128 << 10

// Raw spill-file format: a sequence of chunk frames, each
// [u32 entry count][u32 payload bytes][payload], where the payload is the
// chunk's []Entry[M] backing memory copied verbatim. The same process
// writes and reads the file with the same concrete M, so struct layout,
// endianness, and padding are self-consistent and the format needs no
// version or type header. The raw copy is only used when M is a
// fixed-width pointer-free kind (see rawCodecFor); everything else goes
// through the gob fallback. This path exists because gob's reflection
// costs roughly a microsecond per entry round-trip, which put spill
// drains on the barrier's critical path; the raw codec is a memcpy.

// rawEntryBytes reinterprets a chunk's backing array as bytes. Only legal
// for M accepted by rawCodecFor (no pointers anywhere in Entry[M]).
func rawEntryBytes[M any](chunk []Entry[M]) []byte {
	if len(chunk) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&chunk[0])), len(chunk)*int(unsafe.Sizeof(chunk[0])))
}

// rawCodecFor reports whether M gets the raw run codec: a fixed-width
// pointer-free message kind, making Entry[M] safe to byte-copy. Named
// types over these kinds (and structs, slices, maps) fall back to gob.
func rawCodecFor[M any]() bool {
	var z M
	switch any(z).(type) {
	case float64, float32, int64, uint64, int, uint, int32, uint32,
		int16, uint16, int8, uint8, bool, graph.VertexID:
		return true
	}
	return false
}

// decodeEntries fills dst from one chunk payload. Returns false on a
// size mismatch (treated as file corruption by the caller).
func decodeEntries[M any](dst []Entry[M], b []byte) bool {
	if len(dst) == 0 {
		return len(b) == 0
	}
	raw := rawEntryBytes(dst)
	if len(b) != len(raw) {
		return false
	}
	copy(raw, b)
	return true
}

// countingWriter tracks bytes that have been handed to the underlying
// file, so safeLen can mark run boundaries that are fully on disk.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewSpill creates a spill sink. budget caps in-memory buffered bytes
// (<= 0 disables spilling: everything stays in memory until Drain).
// msgBytes, batchHeader and entryHeader mirror the Buffer sizing
// convention so both tiers account bytes identically.
func NewSpill[M any](budget int64, msgBytes, batchHeader, entryHeader int) *Spill[M] {
	s := &Spill[M]{budget: budget, msgBytes: msgBytes, hdr: batchHeader, entryHdr: entryHeader,
		binary: rawCodecFor[M]()}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetMetrics attaches a metrics registry: BytesSpilled counts run bytes
// written to disk, HistBufferedBytes samples the buffer size after every
// Add (its Max is the run's peak buffered bytes).
func (s *Spill[M]) SetMetrics(reg *metrics.Registry) { s.reg = reg }

func (s *Spill[M]) batchBytes(n int) int64 {
	return int64(s.hdr + n*(s.entryHdr+s.msgBytes))
}

// Add stages one inbound batch. The caller keeps ownership of batch
// (entries are copied in). When admitting the batch would push the buffer
// past the budget, the current buffer is flushed to a run first, so
// buffered bytes never exceed max(budget, one batch). A non-nil target
// enables eager replay: completed runs stream into target during the
// superstep; it must be the same store later passed to Drain, and must
// not be written by anyone else while the sink is armed. Safe for
// concurrent use.
func (s *Spill[M]) Add(batch []Entry[M], target *Store[M]) {
	if len(batch) == 0 {
		return
	}
	bytes := s.batchBytes(len(batch))
	s.mu.Lock()
	s.target = target
	if s.budget > 0 && s.bufBytes > 0 && s.bufBytes+bytes > s.budget && s.spillErr == nil {
		if err := s.flushRunLocked(); err != nil {
			s.spillErr = err // degrade: keep buffering in memory
		}
	}
	if s.binary {
		// Stage pre-encoded: one chunk frame per batch, payload memcpy'd in.
		hdrPos := len(s.ebuf)
		s.ebuf = append(s.ebuf, 0, 0, 0, 0, 0, 0, 0, 0)
		s.ebuf = append(s.ebuf, rawEntryBytes(batch)...)
		binary.LittleEndian.PutUint32(s.ebuf[hdrPos:], uint32(len(batch)))
		binary.LittleEndian.PutUint32(s.ebuf[hdrPos+4:], uint32(len(s.ebuf)-hdrPos-8))
	} else {
		s.buf = append(s.buf, batch...)
	}
	s.bufBytes += bytes
	if s.reg != nil {
		s.reg.Observe(metrics.HistBufferedBytes, s.bufBytes)
	}
	s.mu.Unlock()
}

// flushRunLocked appends the current staging buffer to the spill file as
// one run, in arrival order. On error the buffer is left intact (nothing
// is lost) and safeLen still marks the last complete run, so replay
// ignores any partially-written tail. Caller holds s.mu.
func (s *Spill[M]) flushRunLocked() error {
	if s.bufBytes == 0 {
		return nil
	}
	if s.f == nil {
		if s.dir == "" {
			dir, err := os.MkdirTemp("", "serialgraph-spill-")
			if err != nil {
				return err
			}
			s.dir = dir
		}
		f, err := os.Create(filepath.Join(s.dir, "spill.bin"))
		if err != nil {
			return err
		}
		s.f = f
		s.cw = &countingWriter{w: f}
		if !s.binary {
			s.w = bufio.NewWriterSize(s.cw, spillBufSize)
		}
		s.genc = nil
		s.safeLen = 0
	}
	if s.binary {
		// The staging buffer is already in file format: one write call.
		if _, err := s.cw.Write(s.ebuf); err != nil {
			return err
		}
		s.ebuf = s.ebuf[:0]
	} else {
		if s.genc == nil {
			s.genc = gob.NewEncoder(s.w)
		}
		var werr error
		for off := 0; off < len(s.buf) && werr == nil; off += spillChunk {
			end := min(off+spillChunk, len(s.buf))
			werr = s.genc.Encode(s.buf[off:end])
		}
		if werr == nil {
			werr = s.w.Flush()
		}
		if werr != nil {
			return werr
		}
		s.buf = s.buf[:0]
	}
	s.safeLen = s.cw.n
	s.runs++
	s.spilled += s.bufBytes
	if s.reg != nil {
		s.reg.Add(metrics.BytesSpilled, s.bufBytes)
	}
	s.bufBytes = 0
	// Eager replay only pays off with a spare CPU to run on; on a single
	// processor it just steals cycles from compute, so the file is
	// replayed at Drain instead.
	if s.target != nil && s.binary && !s.replayer && runtime.GOMAXPROCS(0) > 1 {
		s.replayer = true
		go s.replayLoop(s.f.Name())
	}
	s.cond.Broadcast() // new run available for the replayer
	return nil
}

// replayScratch holds the reusable decode buffer of one replay stream.
type replayScratch[M any] struct {
	chunk []Entry[M]
}

// replayChunks streams fixed-width or gob chunks from r into store until
// EOF. gob streams are only replayed whole (one encoder per cycle), so the
// gob branch is only reached with r covering the full file.
func (s *Spill[M]) replayChunks(r io.Reader, store *Store[M], sc *replayScratch[M]) error {
	br := bufio.NewReaderSize(r, spillBufSize)
	if !s.binary {
		dec := gob.NewDecoder(br)
		for {
			sc.chunk = sc.chunk[:0]
			if err := dec.Decode(&sc.chunk); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
			store.PutBatch(sc.chunk)
		}
	}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		count := int(binary.LittleEndian.Uint32(hdr[0:]))
		nbytes := int(binary.LittleEndian.Uint32(hdr[4:]))
		if cap(sc.chunk) < count {
			sc.chunk = make([]Entry[M], count)
		}
		sc.chunk = sc.chunk[:count]
		raw := rawEntryBytes(sc.chunk)
		if nbytes != len(raw) {
			return fmt.Errorf("msgstore: spill chunk corrupt (%d entries, %d bytes)", count, nbytes)
		}
		// Read the payload straight into the entry slice's backing memory —
		// the payload is that memory's file image, so no decode step exists.
		if _, err := io.ReadFull(br, raw); err != nil {
			return err
		}
		store.PutBatch(sc.chunk)
	}
}

// replayLoop is the eager replayer: it follows safeLen through the cycle,
// streaming each completed run into the target store, and exits once
// Drain/Discard marks the cycle closing and it has caught up (or on the
// first read error). It reads through its own descriptor; flushed bytes
// below safeLen are never rewritten, so reading outside mu is safe. With
// the gob fallback the stream is one encoder per cycle and cannot be
// decoded in segments, so eager replay only engages for the binary codec
// (Drain replays gob files whole).
func (s *Spill[M]) replayLoop(path string) {
	rf, err := os.Open(path)
	if err != nil {
		s.mu.Lock()
		s.replayErr = err
		s.replayer = false
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	defer rf.Close()
	var sc replayScratch[M]
	s.mu.Lock()
	for {
		for s.readPos == s.safeLen && !s.closing {
			s.cond.Wait()
		}
		if s.readPos == s.safeLen { // closing and caught up
			break
		}
		start, span, target := s.readPos, s.safeLen, s.target
		s.mu.Unlock()
		err := s.replayChunks(io.NewSectionReader(rf, start, span-start), target, &sc)
		s.mu.Lock()
		if err != nil {
			s.replayErr = err
			break
		}
		s.readPos = span
		s.cond.Broadcast()
	}
	s.replayer = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Drain delivers everything staged — the spill file replayed front to
// back, then the residual memory buffer — into store via chunked
// PutBatch, then resets the sink for the next superstep. Because runs are
// cut and replayed in arrival order with the residual last, the delivery
// stream is byte-for-byte the original arrival stream, making every
// budget (including none) identical to direct delivery. When the eager
// replayer is live, Drain just waits for it to finish the file; the file
// replay then already happened during the superstep. Not safe
// concurrently with Add; the engine calls it at the superstep barrier,
// after WaitIdle.
func (s *Spill[M]) Drain(store *Store[M]) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.joinReplayerLocked()
	readErr := s.replayErr
	if readErr == nil && s.runs > 0 && s.safeLen > s.readPos {
		// No replayer ran (nil target, 1 CPU, or gob codec): replay inline.
		readErr = s.replayFileLocked(store)
	}
	// The residual buffer holds the newest arrivals (plus anything a
	// failed flush kept in memory); it always follows the file.
	if s.binary {
		if err := s.deliverEncodedLocked(store); err != nil && readErr == nil {
			readErr = err
		}
	} else {
		for off := 0; off < len(s.buf); off += spillChunk {
			end := min(off+spillChunk, len(s.buf))
			store.PutBatch(s.buf[off:end])
		}
	}
	s.resetLocked()
	return readErr
}

// deliverEncodedLocked decodes the pre-encoded residual staging buffer
// straight from memory (no file round trip) into store. Caller holds
// s.mu.
func (s *Spill[M]) deliverEncodedLocked(store *Store[M]) error {
	var sc replayScratch[M]
	b := s.ebuf
	for len(b) > 0 {
		if len(b) < 8 {
			return fmt.Errorf("msgstore: spill staging buffer corrupt (%d trailing bytes)", len(b))
		}
		count := int(binary.LittleEndian.Uint32(b[0:]))
		nbytes := int(binary.LittleEndian.Uint32(b[4:]))
		if len(b) < 8+nbytes {
			return fmt.Errorf("msgstore: spill staging buffer corrupt (chunk of %d bytes, %d left)", nbytes, len(b)-8)
		}
		if cap(sc.chunk) < count {
			sc.chunk = make([]Entry[M], count)
		}
		sc.chunk = sc.chunk[:count]
		if !decodeEntries(sc.chunk, b[8:8+nbytes]) {
			return fmt.Errorf("msgstore: spill staging chunk corrupt (%d entries, %d bytes)", count, nbytes)
		}
		store.PutBatch(sc.chunk)
		b = b[8+nbytes:]
	}
	return nil
}

// joinReplayerLocked marks the cycle closing and waits for the eager
// replayer (if live) to catch up with the file and exit. Caller holds
// s.mu.
func (s *Spill[M]) joinReplayerLocked() {
	s.closing = true
	s.cond.Broadcast()
	for s.replayer {
		s.cond.Wait()
	}
}

// replayFileLocked streams the spill file's complete runs (beyond
// readPos) back into the store in write order. Caller holds s.mu; only
// reached when no replayer goroutine is live.
func (s *Spill[M]) replayFileLocked(store *Store[M]) error {
	rf, err := os.Open(s.f.Name())
	if err != nil {
		return err
	}
	defer rf.Close()
	var sc replayScratch[M]
	return s.replayChunks(io.NewSectionReader(rf, s.readPos, s.safeLen-s.readPos), store, &sc)
}

// Discard drops everything staged without delivering it. The engine calls
// it on rollback: staged messages belong to the aborted superstep. Runs
// the eager replayer already delivered are wiped when the caller clears
// the target store, which both rollback paths do immediately after.
func (s *Spill[M]) Discard() {
	s.mu.Lock()
	s.joinReplayerLocked()
	s.resetLocked()
	s.mu.Unlock()
}

// resetLocked clears the buffer and removes the spill file. Caller holds
// s.mu and has joined the replayer. The buffer keeps its capacity
// (bounded by the budget) for the next superstep.
func (s *Spill[M]) resetLocked() {
	if s.f != nil {
		path := s.f.Name()
		s.f.Close()
		os.Remove(path)
		s.f, s.cw, s.w, s.genc = nil, nil, nil, nil
	}
	s.safeLen = 0
	s.runs = 0
	s.buf = s.buf[:0]
	s.ebuf = s.ebuf[:0]
	s.bufBytes = 0
	s.target = nil
	s.closing = false
	s.readPos = 0
	s.replayErr = nil
}

// Close removes the temp directory. Call once the sink is permanently done.
func (s *Spill[M]) Close() {
	s.mu.Lock()
	s.joinReplayerLocked()
	s.resetLocked()
	s.buf, s.ebuf = nil, nil
	if s.dir != "" {
		os.RemoveAll(s.dir)
		s.dir = ""
	}
	s.mu.Unlock()
}

// BufferedBytes returns the current in-memory staged byte count.
func (s *Spill[M]) BufferedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufBytes
}

// SpilledBytes returns the total bytes written to disk runs so far.
func (s *Spill[M]) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// Err returns the first disk-write failure, if any. A non-nil Err means
// the sink degraded to unbounded in-memory buffering at some point;
// delivered results are still correct.
func (s *Spill[M]) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spillErr
}

// Runs returns the number of runs appended to the spill file in the
// current superstep cycle (for tests).
func (s *Spill[M]) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}
