package msgstore

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// lineGraph builds 0->2, 1->2, 2->3 so vertex 2 has two in-neighbors.
func lineGraph() *graph.Graph {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	return b.Build()
}

func all(n int) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(i)
	}
	return out
}

func TestQueueSemantics(t *testing.T) {
	g := lineGraph()
	s := New[int](g, all(4), model.Queue, nil)
	s.Put(2, 0, 10, 0)
	s.Put(2, 1, 20, 0)
	s.Put(2, 0, 30, 0)
	if !s.HasNew(2) || s.NewCount() != 1 {
		t.Fatalf("HasNew/NewCount wrong: %v %d", s.HasNew(2), s.NewCount())
	}
	var r Reader[int]
	if !s.Read(2, &r) {
		t.Fatal("Read found nothing")
	}
	got := append([]int{}, r.Msgs...)
	sort.Ints(got)
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Errorf("msgs = %v", got)
	}
	// Queue consumes.
	if s.Read(2, &r) {
		t.Error("second read returned messages")
	}
	if s.NewCount() != 0 {
		t.Errorf("NewCount = %d after read", s.NewCount())
	}
}

func TestCombineSemantics(t *testing.T) {
	g := lineGraph()
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	s := New[int](g, all(4), model.Combine, min)
	s.Put(2, 0, 10, 0)
	s.Put(2, 1, 3, 0)
	s.Put(2, 0, 7, 0)
	var r Reader[int]
	if !s.Read(2, &r) || len(r.Msgs) != 1 || r.Msgs[0] != 3 {
		t.Fatalf("combined read = %v", r.Msgs)
	}
	if s.Read(2, &r) {
		t.Error("combine slot not consumed")
	}
}

func TestCombineRequiresFunc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for Combine without func")
		}
	}()
	New[int](lineGraph(), all(4), model.Combine, nil)
}

func TestOverwriteSemantics(t *testing.T) {
	g := lineGraph()
	s := New[int](g, all(4), model.Overwrite, nil)
	s.Put(2, 0, 100, 5)
	var r Reader[int]
	if !s.Read(2, &r) || len(r.Msgs) != 1 || r.Srcs[0] != 0 || r.Vers[0] != 5 {
		t.Fatalf("read = %+v", r)
	}
	// Slots are retained (replica semantics) but the new flag clears.
	if s.HasNew(2) {
		t.Error("HasNew true after read")
	}
	if !s.Read(2, &r) || len(r.Msgs) != 1 {
		t.Error("overwrite slots were consumed")
	}
	// A newer message from the same source overwrites.
	s.Put(2, 0, 200, 6)
	s.Put(2, 1, 300, 1)
	if !s.HasNew(2) {
		t.Error("Put did not set new flag")
	}
	s.Read(2, &r)
	if len(r.Msgs) != 2 {
		t.Fatalf("want 2 slots, got %v", r.Msgs)
	}
	bySrc := map[graph.VertexID]int{}
	for i, src := range r.Srcs {
		bySrc[src] = r.Msgs[i]
	}
	if bySrc[0] != 200 || bySrc[1] != 300 {
		t.Errorf("slots = %v", bySrc)
	}
}

func TestOverwriteRejectsNonInNeighbor(t *testing.T) {
	g := lineGraph()
	s := New[int](g, all(4), model.Overwrite, nil)
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-in-neighbor source")
		}
	}()
	s.Put(2, 3, 1, 0) // 3 is not an in-neighbor of 2
}

func TestPutToNotOwnedPanics(t *testing.T) {
	g := lineGraph()
	s := New[int](g, []graph.VertexID{0, 1}, model.Queue, nil)
	if s.Owns(2) {
		t.Fatal("Owns(2) true")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic for unowned Put")
		}
	}()
	s.Put(2, 0, 1, 0)
}

func TestClear(t *testing.T) {
	g := lineGraph()
	s := New[int](g, all(4), model.Overwrite, nil)
	s.Put(2, 0, 1, 0)
	s.Clear()
	if s.NewCount() != 0 || s.HasNew(2) {
		t.Error("Clear left new flags")
	}
	var r Reader[int]
	if s.Read(2, &r) {
		t.Error("Clear left slots")
	}
}

func TestConcurrentPuts(t *testing.T) {
	// Many concurrent writers to one combine store must not lose the min.
	b := graph.NewBuilder(101)
	for i := 1; i <= 100; i++ {
		b.AddEdge(graph.VertexID(i), 0)
	}
	g := b.Build()
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	s := New[int](g, all(101), model.Combine, min)
	var wg sync.WaitGroup
	for w := 1; w <= 100; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				s.Put(0, graph.VertexID(w), 1000+r.Intn(1000), 0)
			}
			s.Put(0, graph.VertexID(w), w, 0)
		}(w)
	}
	wg.Wait()
	var r Reader[int]
	if !s.Read(0, &r) || r.Msgs[0] != 1 {
		t.Errorf("concurrent min = %v, want 1", r.Msgs)
	}
}

func TestBufferFlushThreshold(t *testing.T) {
	var mu sync.Mutex
	var batches [][]Entry[int]
	var bytes []int
	send := func(dest int, batch []Entry[int], b int) {
		mu.Lock()
		batches = append(batches, batch)
		bytes = append(bytes, b)
		mu.Unlock()
	}
	buf := NewBuffer[int](2, 3, 8, 32, 8, send)
	buf.Add(1, Entry[int]{Dst: 1, Src: 0, Msg: 1})
	buf.Add(1, Entry[int]{Dst: 2, Src: 0, Msg: 2})
	if len(batches) != 0 {
		t.Fatal("flushed early")
	}
	buf.Add(1, Entry[int]{Dst: 3, Src: 0, Msg: 3}) // hits cap 3
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("auto flush: %v", batches)
	}
	if want := 32 + 3*(8+8); bytes[0] != want {
		t.Errorf("batch bytes = %d, want %d", bytes[0], want)
	}
	if buf.Pending(1) != 0 {
		t.Error("pending after flush")
	}
}

func TestBufferFlushAll(t *testing.T) {
	var mu sync.Mutex
	got := map[int]int{}
	buf := NewBuffer[int](3, 100, 8, 32, 8, func(dest int, batch []Entry[int], b int) {
		mu.Lock()
		got[dest] += len(batch)
		mu.Unlock()
	})
	buf.Add(0, Entry[int]{Msg: 1})
	buf.Add(2, Entry[int]{Msg: 2})
	buf.Add(2, Entry[int]{Msg: 3})
	buf.FlushAll()
	if got[0] != 1 || got[2] != 2 {
		t.Errorf("flushed %v", got)
	}
	// Empty flush sends nothing.
	buf.FlushAll()
	if got[0] != 1 || got[2] != 2 || got[1] != 0 {
		t.Errorf("empty flush sent something: %v", got)
	}
}

func TestBufferConcurrentAdd(t *testing.T) {
	var total sync.Mutex
	sum := 0
	buf := NewBuffer[int](4, 10, 8, 32, 8, func(dest int, batch []Entry[int], b int) {
		total.Lock()
		sum += len(batch)
		total.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				buf.Add(i%4, Entry[int]{Msg: i})
			}
		}(g)
	}
	wg.Wait()
	buf.FlushAll()
	total.Lock()
	defer total.Unlock()
	if sum != 8000 {
		t.Errorf("sent %d entries, want 8000", sum)
	}
}

func TestBufferSenderCombining(t *testing.T) {
	var mu sync.Mutex
	var batches [][]Entry[int]
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	buf := NewBuffer[int](2, 100, 8, 32, 8, func(dest int, batch []Entry[int], b int) {
		mu.Lock()
		batches = append(batches, batch)
		mu.Unlock()
	})
	buf.SetCombiner(min)
	buf.Add(1, Entry[int]{Dst: 7, Msg: 5})
	buf.Add(1, Entry[int]{Dst: 7, Msg: 3}) // combines into the same slot
	buf.Add(1, Entry[int]{Dst: 8, Msg: 9})
	buf.Add(1, Entry[int]{Dst: 7, Msg: 4}) // still >= 3, keeps 3
	buf.FlushTo(1)
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %v", batches)
	}
	got := map[graph.VertexID]int{}
	for _, e := range batches[0] {
		got[e.Dst] = e.Msg
	}
	if got[7] != 3 || got[8] != 9 {
		t.Errorf("combined values = %v", got)
	}
	// After a flush the slot map resets: new adds start fresh.
	buf.Add(1, Entry[int]{Dst: 7, Msg: 10})
	buf.FlushTo(1)
	if len(batches) != 2 || batches[1][0].Msg != 10 {
		t.Errorf("post-flush combine leaked state: %v", batches)
	}
}

func TestBufferCombiningRespectsCap(t *testing.T) {
	var mu sync.Mutex
	sent := 0
	buf := NewBuffer[int](1, 2, 8, 32, 8, func(dest int, batch []Entry[int], b int) {
		mu.Lock()
		sent += len(batch)
		mu.Unlock()
	})
	buf.SetCombiner(func(a, b int) int { return a + b })
	// Distinct destinations fill the cap; same destination does not.
	buf.Add(0, Entry[int]{Dst: 1, Msg: 1})
	buf.Add(0, Entry[int]{Dst: 1, Msg: 1})
	buf.Add(0, Entry[int]{Dst: 1, Msg: 1})
	if sent != 0 {
		t.Fatalf("combined adds triggered flush: %d", sent)
	}
	buf.Add(0, Entry[int]{Dst: 2, Msg: 1}) // second distinct dst hits cap 2
	if sent != 2 {
		t.Fatalf("cap flush sent %d entries, want 2", sent)
	}
}
