package msgstore

import "sync"

// Log is the per-worker superstep message log that makes confined recovery
// possible (the Pregelix insight: logging runtime state between supersteps
// turns failure handling into replay instead of global re-execution). Each
// worker appends a copy of every remote batch it emits, keyed by the
// superstep it was sent in and the destination worker. When a worker
// crashes, healthy workers keep their in-memory state and the engine
// re-injects their logged batches into the recovering workers' stores — the
// healthy side of every superstep since the last checkpoint is replayed
// from the log, not recomputed.
//
// Entries are copied on Append because batch ownership transfers to the
// transport receiver (and recycled batch slices are reused). Entries
// returned by Entries carry a zeroed Slot hint: the hint indexes the
// destination's in-neighbor list at the time of the original send, and
// topology mutations between then and replay could invalidate it — a zero
// Slot makes the store fall back to a lookup, which is always correct.
//
// The log's coverage window is explicit: Floor is the first superstep whose
// sends are fully retained. TruncateThrough advances it after a checkpoint
// (supersteps at or below the checkpoint will never be replayed); Rewind
// discards a suffix so a recovering worker can re-log the supersteps it is
// about to re-execute; Reset empties the log entirely after a full
// rollback.
type Log[M any] struct {
	mu    sync.Mutex
	steps map[int]map[int][]Entry[M] // superstep -> dest worker -> entries
	floor int
}

// NewLog creates an empty log covering superstep 0 onward.
func NewLog[M any]() *Log[M] {
	return &Log[M]{steps: make(map[int]map[int][]Entry[M])}
}

// Append records a copy of one outgoing remote batch sent during superstep
// step to worker dest. The caller keeps ownership of batch.
func (l *Log[M]) Append(step, dest int, batch []Entry[M]) {
	if len(batch) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if step < l.floor {
		return // below the coverage window; will never be replayed
	}
	m := l.steps[step]
	if m == nil {
		m = make(map[int][]Entry[M])
		l.steps[step] = m
	}
	m[dest] = append(m[dest], batch...)
}

// Entries returns a copy of every entry sent to worker dest during
// superstep step, with Slot hints zeroed (see the package comment). Returns
// nil when nothing was logged.
func (l *Log[M]) Entries(step, dest int) []Entry[M] {
	l.mu.Lock()
	defer l.mu.Unlock()
	src := l.steps[step][dest]
	if len(src) == 0 {
		return nil
	}
	out := make([]Entry[M], len(src))
	copy(out, src)
	for i := range out {
		out[i].Slot = 0
	}
	return out
}

// Covers reports whether the log retains every superstep from 'from'
// onward, i.e. replay starting at 'from' will see all healthy sends.
func (l *Log[M]) Covers(from int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return from >= l.floor
}

// Floor returns the first superstep the log fully retains.
func (l *Log[M]) Floor() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// TruncateThrough discards supersteps <= step and advances the coverage
// floor to step+1. The engine calls it after a successful checkpoint at
// step: recovery never replays at or below a checkpoint.
func (l *Log[M]) TruncateThrough(step int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := range l.steps {
		if s <= step {
			delete(l.steps, s)
		}
	}
	if step+1 > l.floor {
		l.floor = step + 1
	}
}

// Rewind discards supersteps >= from without moving the coverage floor: a
// recovering worker is about to re-execute those supersteps and will re-log
// its sends as it goes.
func (l *Log[M]) Rewind(from int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := range l.steps {
		if s >= from {
			delete(l.steps, s)
		}
	}
}

// Reset empties the log and sets the coverage floor to floor. The engine
// calls it on a full rollback (everything will be re-executed and re-logged
// from the resume superstep).
func (l *Log[M]) Reset(floor int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.steps = make(map[int]map[int][]Entry[M])
	l.floor = floor
}

// Replayable returns the total number of logged entries destined for
// worker dest across supersteps from..to inclusive.
func (l *Log[M]) Replayable(from, to, dest int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for s := from; s <= to; s++ {
		n += len(l.steps[s][dest])
	}
	return n
}
