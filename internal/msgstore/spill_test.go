package msgstore

import (
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/model"
)

// spill test sizing: msgBytes=8, batchHeader=32, entryHeader=8, matching
// the buffer tests, so one n-entry batch costs 32 + 16n bytes.
func newTestSpill(budget int64) *Spill[int] { return NewSpill[int](budget, 8, 32, 8) }

func spillBatch(n, base int) []Entry[int] {
	out := make([]Entry[int], n)
	for i := range out {
		out[i] = Entry[int]{Dst: graph.VertexID(i % 4), Src: -1, Msg: base + i}
	}
	return out
}

func TestSpillNoBudgetStaysInMemory(t *testing.T) {
	s := newTestSpill(0)
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Add(spillBatch(10, i*10), nil)
	}
	if s.Runs() != 0 || s.SpilledBytes() != 0 {
		t.Fatalf("unbudgeted sink spilled: runs=%d bytes=%d", s.Runs(), s.SpilledBytes())
	}
	g := graph.NewBuilder(4).Build()
	st := New[int](g, all(4), model.Queue, nil)
	if err := s.Drain(st); err != nil {
		t.Fatal(err)
	}
	if n := len(st.Dump()); n != 500 {
		t.Fatalf("drained %d entries, want 500", n)
	}
	if s.BufferedBytes() != 0 {
		t.Error("buffer not reset after drain")
	}
}

// TestSpillCapEnforcement is the budget invariant: buffered bytes never
// exceed the budget as long as no single batch does, and everything
// displaced lands on disk with matching byte accounting in the metrics
// registry.
func TestSpillCapEnforcement(t *testing.T) {
	const batchEntries = 10
	batchBytes := int64(32 + batchEntries*16)
	budget := 3 * batchBytes
	s := newTestSpill(budget)
	defer s.Close()
	reg := metrics.New()
	s.SetMetrics(reg)

	for i := 0; i < 40; i++ {
		s.Add(spillBatch(batchEntries, i*batchEntries), nil)
		if got := s.BufferedBytes(); got > budget {
			t.Fatalf("after add %d: buffered %d > budget %d", i, got, budget)
		}
	}
	if s.Runs() == 0 {
		t.Fatal("budget overflow never spilled a run")
	}
	if s.SpilledBytes() == 0 {
		t.Fatal("SpilledBytes zero despite runs on disk")
	}
	if got := reg.Get(metrics.BytesSpilled); got != s.SpilledBytes() {
		t.Errorf("metrics bytes_spilled = %d, sink says %d", got, s.SpilledBytes())
	}
	snap := reg.Snapshot()
	if peak := snap.Hists[metrics.HistBufferedBytes].Max; peak > budget {
		t.Errorf("peak buffered bytes %d exceeds budget %d", peak, budget)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("spill degraded: %v", err)
	}

	g := graph.NewBuilder(4).Build()
	st := New[int](g, all(4), model.Queue, nil)
	if err := s.Drain(st); err != nil {
		t.Fatal(err)
	}
	if n := len(st.Dump()); n != 40*batchEntries {
		t.Fatalf("drained %d entries, want %d", n, 40*batchEntries)
	}
}

// TestSpillOversizedBatchAdmitted: a batch bigger than the whole budget is
// still admitted (peak = that one batch) rather than deadlocking.
func TestSpillOversizedBatchAdmitted(t *testing.T) {
	s := newTestSpill(64)
	defer s.Close()
	big := spillBatch(100, 0) // 32 + 1600 bytes >> 64
	s.Add(big, nil)
	if s.BufferedBytes() == 0 {
		t.Fatal("oversized batch rejected")
	}
	s.Add(spillBatch(2, 200), nil) // forces the big buffer to a run first
	if s.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", s.Runs())
	}
}

// denseGraph builds a graph where every vertex has every other vertex as
// an in-neighbor, so Overwrite-mode entries can use arbitrary (src, dst)
// pairs.
func denseGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	return b.Build()
}

// TestSpillMergeEquivalence is the spill tier's core correctness claim:
// for every store semantics, delivering a batch stream through a
// tiny-budget spill (forcing many run cuts and a file replay) leaves the
// store in exactly the state direct PutBatch delivery would have — both
// with the replay deferred to Drain (lazy) and with the eager replayer
// streaming runs into the store during the "superstep" (eager).
func TestSpillMergeEquivalence(t *testing.T) {
	const nv = 16
	g := denseGraph(nv)
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	cases := []struct {
		name    string
		kind    model.Semantics
		combine func(a, b int) int
	}{
		{"queue", model.Queue, nil},
		{"combine", model.Combine, min},
		{"overwrite", model.Overwrite, nil},
	}
	for _, tc := range cases {
		for _, eager := range []bool{false, true} {
			name := tc.name + "/lazy"
			if eager {
				name = tc.name + "/eager"
			}
			t.Run(name, func(t *testing.T) {
				if eager {
					// The eager replayer only arms with a spare CPU; force
					// it on so the path is covered on single-core hosts too.
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
				}
				rng := rand.New(rand.NewSource(7))
				direct := New[int](g, all(nv), tc.kind, tc.combine)
				spilled := New[int](g, all(nv), tc.kind, tc.combine)
				s := NewSpill[int](128, 8, 32, 8) // tiny: many runs
				defer s.Close()

				for b := 0; b < 60; b++ {
					n := 1 + rng.Intn(7)
					batch := make([]Entry[int], n)
					for i := range batch {
						dst := graph.VertexID(rng.Intn(nv))
						src := graph.VertexID(rng.Intn(nv))
						if src == dst {
							src = (src + 1) % nv
						}
						batch[i] = Entry[int]{Dst: dst, Src: src, Msg: rng.Intn(1000), Ver: uint32(rng.Intn(10))}
					}
					direct.PutBatch(batch)
					if eager {
						s.Add(batch, spilled)
					} else {
						s.Add(batch, nil)
					}
				}
				if s.Runs() < 2 {
					t.Fatalf("only %d runs; budget not tight enough to exercise the replay", s.Runs())
				}
				if err := s.Drain(spilled); err != nil {
					t.Fatal(err)
				}
				want, got := direct.Dump(), spilled.Dump()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("spilled store diverges from direct delivery:\nwant %v\ngot  %v", want, got)
				}
				if direct.NewCount() != spilled.NewCount() {
					t.Errorf("NewCount: direct %d, spilled %d", direct.NewCount(), spilled.NewCount())
				}
			})
		}
	}
}

// TestSpillDrainResets: a second superstep reuses the sink cleanly.
func TestSpillDrainResets(t *testing.T) {
	g := graph.NewBuilder(4).Build()
	s := newTestSpill(64)
	defer s.Close()
	st := New[int](g, all(4), model.Queue, nil)
	s.Add(spillBatch(10, 0), nil)
	s.Add(spillBatch(10, 10), nil)
	if err := s.Drain(st); err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 0 || s.BufferedBytes() != 0 {
		t.Fatal("drain did not reset sink")
	}
	st.Clear()
	s.Add(spillBatch(5, 100), nil)
	if err := s.Drain(st); err != nil {
		t.Fatal(err)
	}
	if n := len(st.Dump()); n != 5 {
		t.Fatalf("second superstep drained %d entries, want 5", n)
	}
}

// TestSpillDiscard: rollback drops staged messages and their run files.
func TestSpillDiscard(t *testing.T) {
	g := graph.NewBuilder(4).Build()
	s := newTestSpill(64)
	s.Add(spillBatch(10, 0), nil)
	s.Add(spillBatch(10, 10), nil)
	if s.Runs() == 0 {
		t.Fatal("setup: nothing spilled")
	}
	dir := s.dir
	s.Discard()
	if s.Runs() != 0 || s.BufferedBytes() != 0 {
		t.Fatal("discard left staged state")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("discard left %d run files", len(ents))
	}
	st := New[int](g, all(4), model.Queue, nil)
	if err := s.Drain(st); err != nil {
		t.Fatal(err)
	}
	if st.NewCount() != 0 {
		t.Error("discarded messages leaked into the store")
	}
	s.Close()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("Close left temp dir %s", dir)
	}
}

// TestSpillConcurrentAdd: multiple appliers feed one sink concurrently
// (as the transport's delivery goroutines do) while the eager replayer
// streams finished runs into the store; nothing is lost.
func TestSpillConcurrentAdd(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2)) // arm the eager replayer
	g := graph.NewBuilder(8).Build()
	s := newTestSpill(256)
	defer s.Close()
	st := New[int](g, all(8), model.Queue, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				batch := make([]Entry[int], 4)
				for k := range batch {
					batch[k] = Entry[int]{Dst: graph.VertexID((w + k) % 8), Src: -1, Msg: w*1000 + i}
				}
				s.Add(batch, st)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Drain(st); err != nil {
		t.Fatal(err)
	}
	if n := len(st.Dump()); n != 8*50*4 {
		t.Fatalf("drained %d entries, want %d", n, 8*50*4)
	}
}
