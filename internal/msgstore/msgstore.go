// Package msgstore implements the per-worker message stores of §6.1: all
// incoming vertex messages for a worker's vertices are buffered here, with
// three pluggable semantics (queue, combine, overwrite-per-source) chosen
// by the algorithm. Local messages are written directly by compute threads
// (eager local replicas); remote messages arrive in batches through the
// transport and are applied on delivery.
//
// The overwrite mode stores one slot per in-edge, making the store exactly
// the read-only replica table of the paper's formalism (§3.1): reading a
// vertex's messages is reading the replicas of its in-edge neighbors, and
// slots carry version numbers so the history checker can verify freshness
// (condition C1).
//
// Hot-path layout (DESIGN.md §9): lock striping is BLOCK-based — each
// stripe covers a contiguous range of local indices — rather than modulo.
// The engine's owned-vertex order concatenates partitions, so one
// partition's vertices occupy a contiguous local-index range and map to
// very few stripes. Compute threads writing eagerly to their own partition
// therefore never contend, and the batched appliers (PutBatch) acquire
// each stripe once per contiguous run instead of once per message. The
// has-new flags are atomics read outside the stripe locks, so activity
// scans (halted-vertex skips, quiescence checks) take no locks at all.
package msgstore

import (
	"fmt"

	"sync"
	"sync/atomic"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

const stripes = 64 // lock striping granularity

// Store holds incoming messages for the vertices owned by one worker.
type Store[M any] struct {
	g       *graph.Graph
	kind    model.Semantics
	combine func(a, b M) M

	local []int32 // global vertex -> local dense index, -1 if not owned
	owned []graph.VertexID

	locks [stripes]sync.Mutex
	// blockSize is the local-index width of one stripe: stripe(li) =
	// li/blockSize, so contiguous indices share stripes (see the package
	// comment for why).
	blockSize int32

	// Queue mode: one slice per owned vertex.
	queues [][]M

	// Combine mode: one slot per owned vertex.
	slot    []M
	hasSlot []bool

	// Overwrite mode: one slot per in-edge of each owned vertex, indexed by
	// the in-neighbor's position in g.InNeighbors(v). Presence and
	// freshness are epoch-stamped rather than boolean: a slot is present
	// when owHasE == epoch and fresh (updated since last read) when
	// owFreshE == epoch, so Clear — called on every BSP store swap — bumps
	// the epoch in O(1) instead of wiping O(in-edges) flags.
	ow       [][]M
	owHasE   [][]uint32
	owVer    [][]uint32
	owFreshE [][]uint32
	epoch    uint32

	// scratch pools batchScratch workspaces for PutBatch.
	scratch sync.Pool

	// hasNew is per owned vertex: unseen message since last read. The
	// flags are written under the vertex's stripe lock (keeping flag and
	// payload consistent for lock holders) but read lock-free by activity
	// scans; newCount moves by exactly one per flag transition.
	hasNew   []atomic.Bool
	newCount atomic.Int64
}

// New creates a store for the given owned vertices.
func New[M any](g *graph.Graph, owned []graph.VertexID, kind model.Semantics, combine func(a, b M) M) *Store[M] {
	if kind == model.Combine && combine == nil {
		panic("msgstore: Combine semantics require a combine function")
	}
	s := &Store[M]{g: g, kind: kind, combine: combine, owned: owned}
	s.local = make([]int32, g.NumVertices())
	for i := range s.local {
		s.local[i] = -1
	}
	for i, v := range owned {
		s.local[v] = int32(i)
	}
	n := len(owned)
	s.blockSize = int32((n + stripes - 1) / stripes)
	if s.blockSize < 1 {
		s.blockSize = 1
	}
	s.hasNew = make([]atomic.Bool, n)
	switch kind {
	case model.Queue:
		s.queues = make([][]M, n)
	case model.Combine:
		s.slot = make([]M, n)
		s.hasSlot = make([]bool, n)
	case model.Overwrite:
		s.epoch = 1
		s.ow = make([][]M, n)
		s.owHasE = make([][]uint32, n)
		s.owVer = make([][]uint32, n)
		s.owFreshE = make([][]uint32, n)
		for i, v := range owned {
			d := g.InDegree(v)
			s.ow[i] = make([]M, d)
			s.owHasE[i] = make([]uint32, d)
			s.owVer[i] = make([]uint32, d)
			s.owFreshE[i] = make([]uint32, d)
		}
	default:
		panic(fmt.Sprintf("msgstore: unknown semantics %v", kind))
	}
	return s
}

// Owns reports whether dst is stored here.
func (s *Store[M]) Owns(dst graph.VertexID) bool { return s.local[dst] >= 0 }

func (s *Store[M]) idx(dst graph.VertexID) int32 {
	li := s.local[dst]
	if li < 0 {
		panic(fmt.Sprintf("msgstore: vertex %d not owned by this store", dst))
	}
	return li
}

// stripeOf maps a local index to its stripe (block striping).
func (s *Store[M]) stripeOf(li int32) int32 { return li / s.blockSize }

// putLocked records message m into local slot li. The caller holds li's
// stripe lock. slot, when non-zero, is the in-neighbor position of src in
// dst's in-list biased by one, sparing the Overwrite path its binary
// search. Returns false when the message is an Overwrite-mode message
// from a non-in-neighbor (the caller unlocks, then panics, so the store is
// not left locked).
func (s *Store[M]) putLocked(li int32, dst, src graph.VertexID, m M, ver uint32, slot uint32) bool {
	switch s.kind {
	case model.Queue:
		s.queues[li] = append(s.queues[li], m)
	case model.Combine:
		if s.hasSlot[li] {
			s.slot[li] = s.combine(s.slot[li], m)
		} else {
			s.slot[li] = m
			s.hasSlot[li] = true
		}
	case model.Overwrite:
		pos := int(slot) - 1
		if slot == 0 {
			var ok bool
			pos, ok = s.g.InSlot(dst, src)
			if !ok {
				return false
			}
		}
		s.ow[li][pos] = m
		s.owHasE[li][pos] = s.epoch
		s.owVer[li][pos] = ver
		s.owFreshE[li][pos] = s.epoch
	}
	if !s.hasNew[li].Load() && s.hasNew[li].CompareAndSwap(false, true) {
		s.newCount.Add(1)
	}
	return true
}

// Put records message m from src to dst. ver is src's value version at send
// time (0 when history tracking is off). Safe for concurrent use.
func (s *Store[M]) Put(dst, src graph.VertexID, m M, ver uint32) {
	s.PutSlot(dst, src, m, ver, 0)
}

// PutSlot is Put with a precomputed in-slot hint (Entry.Slot encoding:
// position+1, 0 = unknown).
func (s *Store[M]) PutSlot(dst, src graph.VertexID, m M, ver uint32, slot uint32) {
	li := s.idx(dst)
	lk := &s.locks[s.stripeOf(li)]
	lk.Lock()
	ok := s.putLocked(li, dst, src, m, ver, slot)
	lk.Unlock()
	if !ok {
		panic(fmt.Sprintf("msgstore: overwrite message from non-in-neighbor %d to %d", src, dst))
	}
}

// batchScratch is the reusable workspace of one PutBatch call, pooled per
// store so concurrent appliers never share one.
type batchScratch[M any] struct {
	entries []Entry[M]
	lis     []int32
	counts  [stripes + 1]int32
}

// smallBatch is the size under which PutBatch skips the bucketing pass:
// grouping a handful of entries costs more than relocking.
const smallBatch = 16

// PutBatch applies a batch of messages, amortizing lock acquisition: the
// batch is grouped by lock stripe with a stable two-pass counting sort
// (no comparisons, no reflection), so each stripe is locked once per
// batch instead of once per message. Under Combine semantics each
// stripe's bucket is additionally ordered by destination and duplicate
// destinations are pre-folded with the combiner before the store is
// touched. Stable bucketing preserves per-destination arrival order, so
// Queue and Overwrite semantics observe exactly the messages (and order)
// that per-message Puts would have produced. Safe for concurrent use by
// multiple appliers.
func (s *Store[M]) PutBatch(batch []Entry[M]) {
	if len(batch) == 0 {
		return
	}
	if len(batch) <= smallBatch {
		// Lazy relocking: hold the current stripe's lock across
		// consecutive same-stripe entries.
		cur := int32(-1)
		for _, e := range batch {
			li := s.idx(e.Dst)
			if st := s.stripeOf(li); st != cur {
				if cur >= 0 {
					s.locks[cur].Unlock()
				}
				cur = st
				s.locks[cur].Lock()
			}
			if !s.putLocked(li, e.Dst, e.Src, e.Msg, e.Ver, e.Slot) {
				s.locks[cur].Unlock()
				panic(fmt.Sprintf("msgstore: overwrite message from non-in-neighbor %d to %d", e.Src, e.Dst))
			}
		}
		if cur >= 0 {
			s.locks[cur].Unlock()
		}
		return
	}

	sc, _ := s.scratch.Get().(*batchScratch[M])
	if sc == nil {
		sc = &batchScratch[M]{}
	}
	if cap(sc.entries) < len(batch) {
		sc.entries = make([]Entry[M], len(batch))
		sc.lis = make([]int32, len(batch))
	}
	grouped := sc.entries[:len(batch)]
	lis := sc.lis[:len(batch)]
	counts := &sc.counts
	*counts = [stripes + 1]int32{}
	for i, e := range batch {
		li := s.idx(e.Dst)
		lis[i] = li
		counts[s.stripeOf(li)+1]++
	}
	for i := 1; i <= stripes; i++ {
		counts[i] += counts[i-1]
	}
	offsets := counts // counts is now the running placement offset per stripe
	for i, e := range batch {
		st := s.stripeOf(lis[i])
		grouped[offsets[st]] = e
		offsets[st]++
	}
	// offsets[st] is now the END of stripe st's bucket (and the start of
	// stripe st+1's), since each advanced by its own count.
	start := int32(0)
	for st := 0; st < stripes; st++ {
		end := offsets[st]
		if end == start {
			continue
		}
		bucket := grouped[start:end]
		start = end
		if s.kind == model.Combine {
			bucket = s.preCombine(bucket)
		}
		lk := &s.locks[st]
		lk.Lock()
		for _, e := range bucket {
			if !s.putLocked(s.idx(e.Dst), e.Dst, e.Src, e.Msg, e.Ver, e.Slot) {
				lk.Unlock()
				s.scratch.Put(sc)
				panic(fmt.Sprintf("msgstore: overwrite message from non-in-neighbor %d to %d", e.Src, e.Dst))
			}
		}
		lk.Unlock()
	}
	s.scratch.Put(sc)
}

// preCombine orders a stripe bucket by destination (stable insertion
// sort — buckets are small) and folds duplicate destinations with the
// combiner, so each surviving destination costs one slot update under the
// lock. Returns the condensed bucket, condensed in place.
func (s *Store[M]) preCombine(bucket []Entry[M]) []Entry[M] {
	for i := 1; i < len(bucket); i++ {
		for j := i; j > 0 && bucket[j].Dst < bucket[j-1].Dst; j-- {
			bucket[j], bucket[j-1] = bucket[j-1], bucket[j]
		}
	}
	w := 0
	for i := 1; i < len(bucket); i++ {
		if bucket[i].Dst == bucket[w].Dst {
			bucket[w].Msg = s.combine(bucket[w].Msg, bucket[i].Msg)
		} else {
			w++
			bucket[w] = bucket[i]
		}
	}
	return bucket[:w+1]
}

// HasNew reports whether dst has messages it has not yet read. Lock-free:
// the answer is a point-in-time observation, exactly like the locked
// variant was for callers that dropped the lock before acting on it.
func (s *Store[M]) HasNew(dst graph.VertexID) bool {
	return s.hasNew[s.idx(dst)].Load()
}

// NewCount returns the number of owned vertices with unread messages.
func (s *Store[M]) NewCount() int64 { return s.newCount.Load() }

// Reader is a reusable scratch buffer for reading a vertex's messages
// without allocation. Each compute thread owns one.
type Reader[M any] struct {
	Msgs []M
	// Srcs and Vers are filled only in Overwrite mode, parallel to Msgs:
	// the in-neighbor each slot belongs to and the version it carried.
	Srcs []graph.VertexID
	Vers []uint32
}

func (r *Reader[M]) reset() {
	r.Msgs = r.Msgs[:0]
	r.Srcs = r.Srcs[:0]
	r.Vers = r.Vers[:0]
}

// Read collects the messages visible to an execution of dst into r and
// returns whether any were present. Queue and Combine consume; Overwrite
// retains slots but clears the new-message flag.
func (s *Store[M]) Read(dst graph.VertexID, r *Reader[M]) bool {
	r.reset()
	li := s.idx(dst)
	lk := &s.locks[s.stripeOf(li)]
	lk.Lock()
	defer lk.Unlock()
	if s.hasNew[li].Load() && s.hasNew[li].CompareAndSwap(true, false) {
		s.newCount.Add(-1)
	}
	switch s.kind {
	case model.Queue:
		if len(s.queues[li]) == 0 {
			return false
		}
		r.Msgs = append(r.Msgs, s.queues[li]...)
		s.queues[li] = s.queues[li][:0]
	case model.Combine:
		if !s.hasSlot[li] {
			return false
		}
		r.Msgs = append(r.Msgs, s.slot[li])
		s.hasSlot[li] = false
	case model.Overwrite:
		in := s.g.InNeighbors(dst)
		any := false
		for pos, e := range s.owHasE[li] {
			if e != s.epoch {
				continue
			}
			any = true
			r.Msgs = append(r.Msgs, s.ow[li][pos])
			r.Srcs = append(r.Srcs, in[pos])
			r.Vers = append(r.Vers, s.owVer[li][pos])
			s.owFreshE[li][pos] = 0 // epoch is always >= 1, so 0 = not fresh
		}
		return any
	}
	return true
}

// Clear atomically drains all state; the BSP engine calls it on every
// store swap. Overwrite mode clears by bumping the presence epoch — O(1)
// for the slot table instead of wiping a flag per in-edge per superstep.
func (s *Store[M]) Clear() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
	if s.kind == model.Overwrite {
		s.epoch++
	}
	for li := range s.hasNew {
		if s.hasNew[li].Load() && s.hasNew[li].CompareAndSwap(true, false) {
			s.newCount.Add(-1)
		}
		switch s.kind {
		case model.Queue:
			s.queues[li] = s.queues[li][:0]
		case model.Combine:
			s.hasSlot[li] = false
		}
	}
	for i := range s.locks {
		s.locks[i].Unlock()
	}
}

// DumpEntry is one message-store record for checkpointing. Src is -1 for
// Queue and Combine modes, which do not track senders.
type DumpEntry[M any] struct {
	Dst, Src graph.VertexID
	Msg      M
	Ver      uint32
	IsNew    bool
}

// Dump snapshots the store's full contents for a checkpoint (§6.4). Call
// only while the cluster is quiescent (at a global barrier). The output
// is preallocated from the live slot counts, so a large store dumps with
// a single allocation.
func (s *Store[M]) Dump() []DumpEntry[M] {
	n := 0
	for li := range s.owned {
		switch s.kind {
		case model.Queue:
			n += len(s.queues[li])
		case model.Combine:
			if s.hasSlot[li] {
				n++
			}
		case model.Overwrite:
			for _, e := range s.owHasE[li] {
				if e == s.epoch {
					n++
				}
			}
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]DumpEntry[M], 0, n)
	for li, v := range s.owned {
		isNew := s.hasNew[li].Load()
		switch s.kind {
		case model.Queue:
			for _, m := range s.queues[li] {
				out = append(out, DumpEntry[M]{Dst: v, Src: -1, Msg: m, IsNew: isNew})
			}
		case model.Combine:
			if s.hasSlot[li] {
				out = append(out, DumpEntry[M]{Dst: v, Src: -1, Msg: s.slot[li], IsNew: isNew})
			}
		case model.Overwrite:
			in := s.g.InNeighbors(v)
			for pos, e := range s.owHasE[li] {
				if e == s.epoch {
					out = append(out, DumpEntry[M]{
						Dst: v, Src: in[pos], Msg: s.ow[li][pos],
						Ver: s.owVer[li][pos], IsNew: isNew && s.owFreshE[li][pos] == s.epoch,
					})
				}
			}
		}
	}
	return out
}

// Load restores a dump produced by Dump into an empty store.
func (s *Store[M]) Load(entries []DumpEntry[M]) {
	s.Clear()
	for _, e := range entries {
		li := s.idx(e.Dst)
		switch s.kind {
		case model.Queue:
			s.queues[li] = append(s.queues[li], e.Msg)
		case model.Combine:
			s.slot[li] = e.Msg
			s.hasSlot[li] = true
		case model.Overwrite:
			pos, ok := s.g.InSlot(e.Dst, e.Src)
			if !ok {
				panic("msgstore: restored entry from non-in-neighbor")
			}
			s.ow[li][pos] = e.Msg
			s.owHasE[li][pos] = s.epoch
			s.owVer[li][pos] = e.Ver
			if e.IsNew {
				s.owFreshE[li][pos] = s.epoch
			} else {
				s.owFreshE[li][pos] = 0
			}
		}
		if e.IsNew && !s.hasNew[li].Load() && s.hasNew[li].CompareAndSwap(false, true) {
			s.newCount.Add(1)
		}
	}
}
