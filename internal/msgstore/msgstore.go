// Package msgstore implements the per-worker message stores of §6.1: all
// incoming vertex messages for a worker's vertices are buffered here, with
// three pluggable semantics (queue, combine, overwrite-per-source) chosen
// by the algorithm. Local messages are written directly by compute threads
// (eager local replicas); remote messages arrive in batches through the
// transport and are applied on delivery.
//
// The overwrite mode stores one slot per in-edge, making the store exactly
// the read-only replica table of the paper's formalism (§3.1): reading a
// vertex's messages is reading the replicas of its in-edge neighbors, and
// slots carry version numbers so the history checker can verify freshness
// (condition C1).
package msgstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

const stripes = 64 // lock striping granularity

// Store holds incoming messages for the vertices owned by one worker.
type Store[M any] struct {
	g       *graph.Graph
	kind    model.Semantics
	combine func(a, b M) M

	local []int32 // global vertex -> local dense index, -1 if not owned
	owned []graph.VertexID

	locks [stripes]sync.Mutex

	// Queue mode: one slice per owned vertex.
	queues [][]M

	// Combine mode: one slot per owned vertex.
	slot    []M
	hasSlot []bool

	// Overwrite mode: one slot per in-edge of each owned vertex, indexed by
	// the in-neighbor's position in g.InNeighbors(v).
	ow      [][]M
	owHas   [][]bool
	owVer   [][]uint32
	owFresh [][]bool // slot updated since last read (activation info)

	hasNew   []bool // per owned vertex: unseen message since last read
	newCount atomic.Int64
}

// New creates a store for the given owned vertices.
func New[M any](g *graph.Graph, owned []graph.VertexID, kind model.Semantics, combine func(a, b M) M) *Store[M] {
	if kind == model.Combine && combine == nil {
		panic("msgstore: Combine semantics require a combine function")
	}
	s := &Store[M]{g: g, kind: kind, combine: combine, owned: owned}
	s.local = make([]int32, g.NumVertices())
	for i := range s.local {
		s.local[i] = -1
	}
	for i, v := range owned {
		s.local[v] = int32(i)
	}
	n := len(owned)
	s.hasNew = make([]bool, n)
	switch kind {
	case model.Queue:
		s.queues = make([][]M, n)
	case model.Combine:
		s.slot = make([]M, n)
		s.hasSlot = make([]bool, n)
	case model.Overwrite:
		s.ow = make([][]M, n)
		s.owHas = make([][]bool, n)
		s.owVer = make([][]uint32, n)
		s.owFresh = make([][]bool, n)
		for i, v := range owned {
			d := g.InDegree(v)
			s.ow[i] = make([]M, d)
			s.owHas[i] = make([]bool, d)
			s.owVer[i] = make([]uint32, d)
			s.owFresh[i] = make([]bool, d)
		}
	default:
		panic(fmt.Sprintf("msgstore: unknown semantics %v", kind))
	}
	return s
}

// Owns reports whether dst is stored here.
func (s *Store[M]) Owns(dst graph.VertexID) bool { return s.local[dst] >= 0 }

func (s *Store[M]) idx(dst graph.VertexID) int32 {
	li := s.local[dst]
	if li < 0 {
		panic(fmt.Sprintf("msgstore: vertex %d not owned by this store", dst))
	}
	return li
}

// Put records message m from src to dst. ver is src's value version at send
// time (0 when history tracking is off). Safe for concurrent use.
func (s *Store[M]) Put(dst, src graph.VertexID, m M, ver uint32) {
	li := s.idx(dst)
	lk := &s.locks[li%stripes]
	lk.Lock()
	switch s.kind {
	case model.Queue:
		s.queues[li] = append(s.queues[li], m)
	case model.Combine:
		if s.hasSlot[li] {
			s.slot[li] = s.combine(s.slot[li], m)
		} else {
			s.slot[li] = m
			s.hasSlot[li] = true
		}
	case model.Overwrite:
		pos, ok := s.g.InSlot(dst, src)
		if !ok {
			lk.Unlock()
			panic(fmt.Sprintf("msgstore: overwrite message from non-in-neighbor %d to %d", src, dst))
		}
		s.ow[li][pos] = m
		s.owHas[li][pos] = true
		s.owVer[li][pos] = ver
		s.owFresh[li][pos] = true
	}
	if !s.hasNew[li] {
		s.hasNew[li] = true
		s.newCount.Add(1)
	}
	lk.Unlock()
}

// HasNew reports whether dst has messages it has not yet read.
func (s *Store[M]) HasNew(dst graph.VertexID) bool {
	li := s.idx(dst)
	lk := &s.locks[li%stripes]
	lk.Lock()
	defer lk.Unlock()
	return s.hasNew[li]
}

// NewCount returns the number of owned vertices with unread messages.
func (s *Store[M]) NewCount() int64 { return s.newCount.Load() }

// Reader is a reusable scratch buffer for reading a vertex's messages
// without allocation. Each compute thread owns one.
type Reader[M any] struct {
	Msgs []M
	// Srcs and Vers are filled only in Overwrite mode, parallel to Msgs:
	// the in-neighbor each slot belongs to and the version it carried.
	Srcs []graph.VertexID
	Vers []uint32
}

func (r *Reader[M]) reset() {
	r.Msgs = r.Msgs[:0]
	r.Srcs = r.Srcs[:0]
	r.Vers = r.Vers[:0]
}

// Read collects the messages visible to an execution of dst into r and
// returns whether any were present. Queue and Combine consume; Overwrite
// retains slots but clears the new-message flag.
func (s *Store[M]) Read(dst graph.VertexID, r *Reader[M]) bool {
	r.reset()
	li := s.idx(dst)
	lk := &s.locks[li%stripes]
	lk.Lock()
	defer lk.Unlock()
	if s.hasNew[li] {
		s.hasNew[li] = false
		s.newCount.Add(-1)
	}
	switch s.kind {
	case model.Queue:
		if len(s.queues[li]) == 0 {
			return false
		}
		r.Msgs = append(r.Msgs, s.queues[li]...)
		s.queues[li] = s.queues[li][:0]
	case model.Combine:
		if !s.hasSlot[li] {
			return false
		}
		r.Msgs = append(r.Msgs, s.slot[li])
		s.hasSlot[li] = false
	case model.Overwrite:
		in := s.g.InNeighbors(dst)
		any := false
		for pos, has := range s.owHas[li] {
			if !has {
				continue
			}
			any = true
			r.Msgs = append(r.Msgs, s.ow[li][pos])
			r.Srcs = append(r.Srcs, in[pos])
			r.Vers = append(r.Vers, s.owVer[li][pos])
			s.owFresh[li][pos] = false
		}
		return any
	}
	return true
}

// SwapEmpty atomically drains all state, used when resetting between runs.
func (s *Store[M]) Clear() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
	for li := range s.hasNew {
		if s.hasNew[li] {
			s.hasNew[li] = false
			s.newCount.Add(-1)
		}
		switch s.kind {
		case model.Queue:
			s.queues[li] = s.queues[li][:0]
		case model.Combine:
			s.hasSlot[li] = false
		case model.Overwrite:
			for p := range s.owHas[li] {
				s.owHas[li][p] = false
				s.owFresh[li][p] = false
				s.owVer[li][p] = 0
			}
		}
	}
	for i := range s.locks {
		s.locks[i].Unlock()
	}
}

// DumpEntry is one message-store record for checkpointing. Src is -1 for
// Queue and Combine modes, which do not track senders.
type DumpEntry[M any] struct {
	Dst, Src graph.VertexID
	Msg      M
	Ver      uint32
	IsNew    bool
}

// Dump snapshots the store's full contents for a checkpoint (§6.4). Call
// only while the cluster is quiescent (at a global barrier).
func (s *Store[M]) Dump() []DumpEntry[M] {
	var out []DumpEntry[M]
	for li, v := range s.owned {
		isNew := s.hasNew[li]
		switch s.kind {
		case model.Queue:
			for _, m := range s.queues[li] {
				out = append(out, DumpEntry[M]{Dst: v, Src: -1, Msg: m, IsNew: isNew})
			}
		case model.Combine:
			if s.hasSlot[li] {
				out = append(out, DumpEntry[M]{Dst: v, Src: -1, Msg: s.slot[li], IsNew: isNew})
			}
		case model.Overwrite:
			in := s.g.InNeighbors(v)
			for pos, has := range s.owHas[li] {
				if has {
					out = append(out, DumpEntry[M]{
						Dst: v, Src: in[pos], Msg: s.ow[li][pos],
						Ver: s.owVer[li][pos], IsNew: isNew && s.owFresh[li][pos],
					})
				}
			}
		}
	}
	return out
}

// Load restores a dump produced by Dump into an empty store.
func (s *Store[M]) Load(entries []DumpEntry[M]) {
	s.Clear()
	for _, e := range entries {
		li := s.idx(e.Dst)
		switch s.kind {
		case model.Queue:
			s.queues[li] = append(s.queues[li], e.Msg)
		case model.Combine:
			s.slot[li] = e.Msg
			s.hasSlot[li] = true
		case model.Overwrite:
			pos, ok := s.g.InSlot(e.Dst, e.Src)
			if !ok {
				panic("msgstore: restored entry from non-in-neighbor")
			}
			s.ow[li][pos] = e.Msg
			s.owHas[li][pos] = true
			s.owVer[li][pos] = e.Ver
			s.owFresh[li][pos] = e.IsNew
		}
		if e.IsNew && !s.hasNew[li] {
			s.hasNew[li] = true
			s.newCount.Add(1)
		}
	}
}
