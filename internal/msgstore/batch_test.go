package msgstore

// Batched-path equivalence tests: PutBatch must be observationally
// identical to per-message Put under every semantics (it only changes the
// locking pattern), AddBatch must be observationally identical to
// per-message Add (it only changes lock granularity), and the recycled
// batch slices installed by SetAlloc must never leak one batch's entries
// into another.

import (
	"math/rand"
	"sort"
	"testing"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// randomGraph builds a dense-ish random digraph so every vertex has
// in-neighbors for Overwrite mode to address.
func randomGraph(n int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Intn(3) == 0 {
				b.AddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		}
	}
	return b.Build()
}

// randomEntries draws messages along existing edges (so Overwrite accepts
// them), with duplicates across (dst, src) pairs to exercise last-wins and
// combining paths.
func randomEntries(g *graph.Graph, count int, rng *rand.Rand) []Entry[int] {
	var es []Entry[int]
	n := g.NumVertices()
	for len(es) < count {
		u := graph.VertexID(rng.Intn(n))
		outs := g.OutNeighbors(u)
		if len(outs) == 0 {
			continue
		}
		dst := outs[rng.Intn(len(outs))]
		e := Entry[int]{Dst: dst, Src: u, Msg: rng.Intn(1000), Ver: uint32(rng.Intn(5))}
		if rng.Intn(2) == 0 {
			if pos, ok := g.InSlot(dst, u); ok {
				e.Slot = uint32(pos) + 1
			}
		}
		es = append(es, e)
	}
	return es
}

// drain reads every vertex's messages into a canonical comparable form.
func drain(t *testing.T, s *Store[int], n int) map[graph.VertexID][]int {
	t.Helper()
	out := make(map[graph.VertexID][]int)
	var r Reader[int]
	for v := 0; v < n; v++ {
		if s.Read(graph.VertexID(v), &r) {
			msgs := append([]int(nil), r.Msgs...)
			sort.Ints(msgs)
			out[graph.VertexID(v)] = msgs
		}
	}
	return out
}

func TestPutBatchMatchesPut(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(24, rng)
	add := func(a, b int) int { return a + b }
	for _, tc := range []struct {
		name    string
		sem     model.Semantics
		combine func(a, b int) int
	}{
		{"queue", model.Queue, nil},
		{"combine", model.Combine, add},
		{"overwrite", model.Overwrite, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				es := randomEntries(g, 5+rng.Intn(200), rng)
				ref := New[int](g, all(24), tc.sem, tc.combine)
				got := New[int](g, all(24), tc.sem, tc.combine)
				for _, e := range es {
					ref.PutSlot(e.Dst, e.Src, e.Msg, e.Ver, e.Slot)
				}
				// Split the same entries into random-size chunks to hit both
				// the small-batch lazy-relock path and the counting-sort path.
				for i := 0; i < len(es); {
					j := i + 1 + rng.Intn(64)
					if j > len(es) {
						j = len(es)
					}
					got.PutBatch(es[i:j])
					i = j
				}
				if want, have := ref.NewCount(), got.NewCount(); want != have {
					t.Fatalf("trial %d: NewCount %d, want %d", trial, have, want)
				}
				w, h := drain(t, ref, 24), drain(t, got, 24)
				if len(w) != len(h) {
					t.Fatalf("trial %d: %d vertices with messages, want %d", trial, len(h), len(w))
				}
				for v, msgs := range w {
					hm := h[v]
					if len(hm) != len(msgs) {
						t.Fatalf("trial %d vertex %d: msgs %v, want %v", trial, v, hm, msgs)
					}
					for i := range msgs {
						if hm[i] != msgs[i] {
							t.Fatalf("trial %d vertex %d: msgs %v, want %v", trial, v, hm, msgs)
						}
					}
				}
			}
		})
	}
}

// TestPutBatchOverwriteLastWins pins that the counting sort behind the
// large-batch path is stable: two updates for the same (dst, src) in one
// batch must land in program order, exactly as sequential Puts would.
func TestPutBatchOverwriteLastWins(t *testing.T) {
	g := randomGraph(24, rand.New(rand.NewSource(7)))
	var dst, src graph.VertexID = -1, -1
	for v := 0; v < 24 && dst < 0; v++ {
		ins := g.InNeighbors(graph.VertexID(v))
		if len(ins) > 0 {
			dst, src = graph.VertexID(v), ins[0]
		}
	}
	if dst < 0 {
		t.Fatal("no edge found")
	}
	// Pad with messages to other vertices so the batch exceeds smallBatch.
	batch := []Entry[int]{{Dst: dst, Src: src, Msg: 1}}
	batch = append(batch, randomEntries(g, 40, rand.New(rand.NewSource(8)))...)
	batch = append(batch, Entry[int]{Dst: dst, Src: src, Msg: 2})
	s := New[int](g, all(24), model.Overwrite, nil)
	s.PutBatch(batch)
	var r Reader[int]
	if !s.Read(dst, &r) {
		t.Fatal("no messages for dst")
	}
	for i, u := range r.Srcs {
		if u == src && r.Msgs[i] != 2 {
			t.Errorf("slot for src %d = %d, want 2 (last write in batch order)", src, r.Msgs[i])
		}
	}
}

// flushedSink collects every emitted batch, simulating the receiver.
type flushedSink struct {
	batches [][]Entry[int]
}

func (fs *flushedSink) send(dest int, batch []Entry[int], bytes int) {
	fs.batches = append(fs.batches, append([]Entry[int](nil), batch...))
}

// totals folds everything flushed into per-destination-vertex sums, which
// is invariant under combining with addition.
func (fs *flushedSink) totals() map[graph.VertexID]int {
	out := make(map[graph.VertexID]int)
	for _, b := range fs.batches {
		for _, e := range b {
			out[e.Dst] += e.Msg
		}
	}
	return out
}

func TestAddBatchMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, combining := range []bool{false, true} {
		name := "plain"
		if combining {
			name = "combining"
		}
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				var es []Entry[int]
				for i := 0; i < 300+rng.Intn(300); i++ {
					es = append(es, Entry[int]{
						Dst: graph.VertexID(rng.Intn(40)), Src: graph.VertexID(rng.Intn(40)),
						Msg: rng.Intn(100),
					})
				}
				var refSink, gotSink flushedSink
				ref := NewBuffer[int](2, 32, 8, 16, 4, refSink.send)
				got := NewBuffer[int](2, 32, 8, 16, 4, gotSink.send)
				if combining {
					ref.SetCombiner(func(a, b int) int { return a + b })
					got.SetCombiner(func(a, b int) int { return a + b })
				}
				refSink.batches = nil
				gotSink.batches = nil
				for _, e := range es {
					ref.Add(1, e)
				}
				for i := 0; i < len(es); {
					j := i + 1 + rng.Intn(80)
					if j > len(es) {
						j = len(es)
					}
					got.AddBatch(1, es[i:j])
					i = j
				}
				ref.FlushAll()
				got.FlushAll()
				w, h := refSink.totals(), gotSink.totals()
				if len(w) != len(h) {
					t.Fatalf("trial %d: %d destination vertices, want %d", trial, len(h), len(w))
				}
				for v, sum := range w {
					if h[v] != sum {
						t.Fatalf("trial %d: vertex %d total %d, want %d", trial, v, h[v], sum)
					}
				}
			}
		})
	}
}

// TestBufferRecycledBatches drives a buffer whose allocator hands back
// previously emitted slices (as the engine's batch pool does) and checks
// no entry is lost, duplicated, or clobbered by reuse.
func TestBufferRecycledBatches(t *testing.T) {
	var free [][]Entry[int]
	var got []Entry[int]
	b := NewBuffer[int](1, 16, 8, 16, 4, func(dest int, batch []Entry[int], bytes int) {
		got = append(got, batch...)
		free = append(free, batch[:0]) // receiver done: recycle
	})
	b.SetAlloc(func() []Entry[int] {
		if len(free) == 0 {
			return nil
		}
		s := free[len(free)-1]
		free = free[:len(free)-1]
		return s
	})
	const total = 1000
	next := 0
	for next < total {
		run := 1 + next%7
		var chunk []Entry[int]
		for i := 0; i < run && next < total; i++ {
			chunk = append(chunk, Entry[int]{Dst: graph.VertexID(next % 5), Msg: next})
			next++
		}
		b.AddBatch(0, chunk)
	}
	b.FlushAll()
	if len(got) != total {
		t.Fatalf("delivered %d entries, want %d", len(got), total)
	}
	seen := make([]bool, total)
	for _, e := range got {
		if seen[e.Msg] {
			t.Fatalf("entry %d delivered twice", e.Msg)
		}
		seen[e.Msg] = true
	}
}

// TestOverwriteClearEpochs pins the epoch-based Clear: repeated clears
// must fully hide earlier puts (presence AND freshness) while keeping the
// store usable without per-edge rescrubbing.
func TestOverwriteClearEpochs(t *testing.T) {
	g := lineGraph()
	s := New[int](g, all(4), model.Overwrite, nil)
	for round := 1; round <= 5; round++ {
		s.Put(2, 0, round*10, uint32(round))
		s.Put(2, 1, round*100, uint32(round))
		var r Reader[int]
		if !s.Read(2, &r) || len(r.Msgs) != 2 {
			t.Fatalf("round %d: read %v", round, r.Msgs)
		}
		sort.Ints(r.Msgs)
		if r.Msgs[0] != round*10 || r.Msgs[1] != round*100 {
			t.Fatalf("round %d: msgs %v; stale epoch leaked", round, r.Msgs)
		}
		s.Clear()
		if s.NewCount() != 0 {
			t.Fatalf("round %d: NewCount %d after Clear", round, s.NewCount())
		}
		if s.Read(2, &r) {
			t.Fatalf("round %d: read after Clear returned %v", round, r.Msgs)
		}
	}
}
