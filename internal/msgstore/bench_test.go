package msgstore

import (
	"fmt"
	"sync"
	"testing"

	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// benchGraph is shared by the microbenchmarks: large enough that the
// store's striping matters, small enough to set up quickly.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return generate.PowerLaw(generate.PowerLawConfig{N: 4096, AvgDegree: 8, Exponent: 2.2, Seed: 7})
}

func benchOwned(g *graph.Graph) []graph.VertexID {
	owned := make([]graph.VertexID, g.NumVertices())
	for v := range owned {
		owned[v] = graph.VertexID(v)
	}
	return owned
}

func benchStore(g *graph.Graph, kind model.Semantics) *Store[int32] {
	var combine func(a, b int32) int32
	if kind == model.Combine {
		combine = func(a, b int32) int32 { return a + b }
	}
	return New(g, benchOwned(g), kind, combine)
}

// benchEntries builds a realistic message stream: every vertex sends one
// message along each of its out-edges, in vertex order — the shape both
// eager local delivery and remote batches produce.
func benchEntries(g *graph.Graph) []Entry[int32] {
	var out []Entry[int32]
	for v := 0; v < g.NumVertices(); v++ {
		u := graph.VertexID(v)
		for _, nb := range g.OutNeighbors(u) {
			out = append(out, Entry[int32]{Dst: nb, Src: u, Msg: int32(v)})
		}
	}
	return out
}

var semanticsCases = []struct {
	name string
	kind model.Semantics
}{
	{"Queue", model.Queue},
	{"Combine", model.Combine},
	{"Overwrite", model.Overwrite},
}

// BenchmarkPut measures per-message delivery (the eager local path)
// across semantics and writer counts.
func BenchmarkPut(b *testing.B) {
	g := benchGraph(b)
	entries := benchEntries(g)
	for _, sc := range semanticsCases {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", sc.name, workers), func(b *testing.B) {
				s := benchStore(g, sc.kind)
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N/workers + 1
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							e := entries[(w*per+i)%len(entries)]
							s.Put(e.Dst, e.Src, e.Msg, 0)
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkPutBatch measures the batched apply (remote delivery and
// staged-local folds) across semantics and concurrent applier counts.
func BenchmarkPutBatch(b *testing.B) {
	g := benchGraph(b)
	entries := benchEntries(g)
	const batchSize = 512
	for _, sc := range semanticsCases {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", sc.name, workers), func(b *testing.B) {
				s := benchStore(g, sc.kind)
				// Each goroutine replays from a private copy: PutBatch
				// reorders its argument in place.
				scratch := make([][]Entry[int32], workers)
				for w := range scratch {
					scratch[w] = make([]Entry[int32], batchSize)
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N/(workers*batchSize) + 1
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						off := (w * 131) % len(entries)
						for i := 0; i < per; i++ {
							n := copy(scratch[w], entries[off:])
							s.PutBatch(scratch[w][:n])
							off = (off + n) % (len(entries) - batchSize)
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkRead measures message consumption across semantics.
func BenchmarkRead(b *testing.B) {
	g := benchGraph(b)
	entries := benchEntries(g)
	for _, sc := range semanticsCases {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", sc.name, workers), func(b *testing.B) {
				s := benchStore(g, sc.kind)
				for _, e := range entries {
					s.Put(e.Dst, e.Src, e.Msg, 0)
				}
				n := g.NumVertices()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N/workers + 1
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						var r Reader[int32]
						for i := 0; i < per; i++ {
							s.Read(graph.VertexID((w*per+i)%n), &r)
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}
